package electd_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestTTLEvictionReclaimsIdleInstances: instances nobody touches for the
// TTL disappear on their own, and the eviction counter says so — the
// standalone-daemon garbage collection RemoveElection callers don't need.
func TestTTLEvictionReclaimsIdleInstances(t *testing.T) {
	cl, err := electd.NewClusterWith(transport.NewLoopback(), 3, electd.ClusterOptions{
		Server: electd.ServerOptions{TTL: 30 * time.Millisecond, SweepInterval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for e := 0; e < 8; e++ {
		uniqueWinner(t, fmt.Sprintf("election %d", e), electOnce(t, cl, cl.NextElectionID(), 3, int64(e+1)))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := 0
		for i := 0; i < cl.N(); i++ {
			live += cl.Server(rt.ProcID(i)).Elections()
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d instances still live long past their TTL", live)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < cl.N(); i++ {
		if ev := cl.Server(rt.ProcID(i)).Evicted(); ev == 0 {
			t.Fatalf("server %d reclaimed state without counting it", i)
		}
	}
}

// TestAdmissionBoundShedsWithBusyReply: a server at its per-shard bound
// answers instance-creating propagates with an explicit busy reply — never
// silence — while existing instances keep being served. 17 distinct IDs
// over 16 shards guarantee a collision by pigeonhole.
func TestAdmissionBoundShedsWithBusyReply(t *testing.T) {
	srv := electd.NewServerOpts(0, electd.ServerOptions{MaxLivePerShard: 1})
	defer srv.Close()
	nw := transport.NewLoopback()
	ln, err := nw.Listen(srv.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan *wire.Msg, 64)
	conn, err := nw.Dial(ln.Addr(), func(_ transport.Conn, m *wire.Msg) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	acks, busies := 0, 0
	for e := uint64(1); e <= 17; e++ {
		conn.Send(&wire.Msg{ //nolint:errcheck
			Kind: wire.KindPropagate, Election: e, Call: e, From: 1, Reg: "r",
			Entries: []rt.Entry{{Reg: "r", Owner: 1, Seq: 1, Val: 7}},
		})
		select {
		case m := <-got:
			switch m.Kind {
			case wire.KindAck:
				acks++
			case wire.KindBusy:
				busies++
				if m.Call != e {
					t.Fatalf("busy reply for call %d, want %d", m.Call, e)
				}
			default:
				t.Fatalf("unexpected reply kind %v", m.Kind)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no reply to propagate %d — sheds must be explicit, not silent", e)
		}
	}
	if busies == 0 {
		t.Fatalf("17 instances over 16 shards at bound 1 shed nothing (%d acks)", acks)
	}
	if acks == 0 {
		t.Fatal("every propagate shed; the bound should admit one instance per shard")
	}
	if srv.Shed() != int64(busies) {
		t.Fatalf("shed counter %d != %d busy replies observed", srv.Shed(), busies)
	}
	// An admitted instance stays servable at the bound.
	conn.Send(&wire.Msg{ //nolint:errcheck
		Kind: wire.KindPropagate, Election: 1, Call: 100, From: 1, Reg: "r",
		Entries: []rt.Entry{{Reg: "r", Owner: 1, Seq: 2, Val: 8}},
	})
	select {
	case m := <-got:
		if m.Kind != wire.KindAck {
			t.Fatalf("existing instance refused at the bound: %v", m.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply for an existing instance")
	}
}

// TestBusyErrorSurfacesToClient: a shed propagate unwinds the participant
// through the pool as a typed, retryable *BusyError via CatchBusy — the
// client-side half of admission control.
func TestBusyErrorSurfacesToClient(t *testing.T) {
	cl, err := electd.NewClusterWith(transport.NewLoopback(), 1, electd.ClusterOptions{
		Server: electd.ServerOptions{MaxLivePerShard: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var firstBusy error
	for e := 0; e < 17; e++ {
		id := cl.NextElectionID()
		c := cl.NewComm(electd.NewParticipant(0, 1, int64(e+1)), id, nil)
		if err := electd.CatchBusy(func() { c.Propagate("r", rt.Value(e)) }); err != nil {
			firstBusy = err
			break
		}
	}
	if firstBusy == nil {
		t.Fatal("17 instances over 16 shards at bound 1 never surfaced a BusyError")
	}
	var be *electd.BusyError
	if !errors.As(firstBusy, &be) {
		t.Fatalf("shed surfaced as %T (%v), want *BusyError", firstBusy, firstBusy)
	}
	if !be.Temporary() {
		t.Fatal("BusyError must be retryable (Temporary)")
	}
}

// TestDrainStopsAdmittingFinishesInFlight: drain mode refuses new
// elections with busy replies, keeps serving in-flight ones, and Drain
// reclaims everything once they go idle.
func TestDrainStopsAdmittingFinishesInFlight(t *testing.T) {
	cl, err := electd.NewClusterWith(transport.NewLoopback(), 1, electd.ClusterOptions{
		Server: electd.ServerOptions{DrainIdle: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	inflight := cl.NewComm(electd.NewParticipant(0, 2, 1), cl.NextElectionID(), nil)
	inflight.Propagate("r", 1) // instance exists before the drain begins

	cl.BeginDrain()
	if !cl.Server(0).Draining() {
		t.Fatal("BeginDrain did not mark the server draining")
	}
	// In-flight work keeps going...
	if err := electd.CatchBusy(func() { inflight.Propagate("r", 2) }); err != nil {
		t.Fatalf("draining server refused an in-flight election: %v", err)
	}
	// ...new elections do not start.
	fresh := cl.NewComm(electd.NewParticipant(1, 2, 2), cl.NextElectionID(), nil)
	err = electd.CatchBusy(func() { fresh.Propagate("r", 1) })
	var be *electd.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("draining server admitted a new election (err=%v)", err)
	}

	if err := cl.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain of an idle cluster failed: %v", err)
	}
	if live := cl.Server(0).Elections(); live != 0 {
		t.Fatalf("%d instances survived a completed drain", live)
	}
}

// TestDrainDeadlineReportsStragglers: a drain that cannot quiesce in time
// returns an error naming the live instances instead of hanging — the
// signal cmd/electd turns into a non-zero exit.
func TestDrainDeadlineReportsStragglers(t *testing.T) {
	srv := electd.NewServerOpts(0, electd.ServerOptions{DrainIdle: time.Hour})
	defer srv.Close()
	nw := transport.NewLoopback()
	ln, err := nw.Listen(srv.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := nw.Dial(ln.Addr(), func(_ transport.Conn, m *wire.Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Send(&wire.Msg{ //nolint:errcheck
		Kind: wire.KindPropagate, Election: 1, Call: 1, From: 1, Reg: "r",
		Entries: []rt.Entry{{Reg: "r", Owner: 1, Seq: 1, Val: 7}},
	})
	deadline := time.Now().Add(5 * time.Second)
	for srv.Elections() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("propagate never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("drain reported success with an instance that can never go idle")
	}
}

// TestRestartRacesRemovalAndSweeper: Server.Restart churning against
// explicit RemoveElection and the background sweeper on the same shards,
// with multiplexed elections running throughout — the shard-lifecycle
// torture test. Run under -race this pins the locking contract; the TTL is
// generous so the sweeper exercises the locks without evicting live
// elections mid-flight.
func TestRestartRacesRemovalAndSweeper(t *testing.T) {
	const n, k = 3, 3
	cl, err := electd.NewClusterWith(transport.NewLoopback(), n, electd.ClusterOptions{
		Server: electd.ServerOptions{TTL: 60 * time.Second, SweepInterval: time.Millisecond, MaxLivePerShard: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	// Replica 0 flaps: crashed replicas drop requests (the quorum rides on
	// the other two), restarted ones serve whatever state they kept.
	churn.Add(1)
	go func() {
		defer churn.Done()
		srv := cl.Server(0)
		for {
			select {
			case <-stop:
				return
			default:
				srv.Crash()
				time.Sleep(200 * time.Microsecond)
				srv.Restart()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	results := make([][]core.Decision, 24)
	for e := range results {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			id := cl.NextElectionID()
			results[e] = electOnce(t, cl, id, k, int64(e+1))
			cl.RemoveElection(id) // removal races the sweeper and the flapping
		}(e)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	cl.Server(0).Restart()
	for e, decisions := range results {
		uniqueWinner(t, fmt.Sprintf("flapping election %d", e), decisions)
	}
}

// TestByteAccountingInvariantUnderMetrics: the paper's payload-byte and
// message accounting must not move when observability and eviction are
// switched on — metrics are read-side, and transport counters are a
// different ledger. n=1 makes every reply quorum-counted (no straggler
// races), so the comparison is exact equality.
func TestByteAccountingInvariantUnderMetrics(t *testing.T) {
	workload := func(opts electd.ClusterOptions) (calls int, msgs, bytes int64) {
		cl, err := electd.NewClusterWith(transport.NewLoopback(), 1, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		c := cl.NewComm(electd.NewParticipant(0, 4, 42), cl.NextElectionID(), nil)
		for i := 0; i < 10; i++ {
			c.Propagate(fmt.Sprintf("r%d", i%3), rt.Value(i))
			c.Collect(fmt.Sprintf("r%d", i%3))
		}
		return c.Calls(), c.Messages(), c.Bytes()
	}

	calls0, msgs0, bytes0 := workload(electd.ClusterOptions{})
	reg := obs.NewRegistry()
	calls1, msgs1, bytes1 := workload(electd.ClusterOptions{
		Pool: electd.PoolOptions{Metrics: reg},
		Server: electd.ServerOptions{
			TTL: 200 * time.Millisecond, SweepInterval: 20 * time.Millisecond, Metrics: reg,
		},
	})
	if calls0 != calls1 || msgs0 != msgs1 || bytes0 != bytes1 {
		t.Fatalf("accounting moved under metrics+eviction: calls %d→%d, msgs %d→%d, bytes %d→%d",
			calls0, calls1, msgs0, msgs1, bytes0, bytes1)
	}
	if bytes0 == 0 {
		t.Fatal("byte accounting went silent")
	}
	// And the observability side saw the instrumented run.
	snap := reg.Snapshot()
	if snap.Total("electd_requests_served_total") == 0 {
		t.Fatal("metrics registered but counted nothing")
	}
}

// TestClusterMetricsEndToEnd: a metrics-enabled cluster's registry agrees
// with the servers' own counters after a real election, and the registry
// snapshot carries the latency histogram the pool feeds.
func TestClusterMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	cl, err := electd.NewClusterWith(transport.NewLoopback(), 3, electd.ClusterOptions{
		Pool:   electd.PoolOptions{Metrics: reg},
		Server: electd.ServerOptions{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	uniqueWinner(t, "metrics election", electOnce(t, cl, cl.NextElectionID(), 3, 9))

	var served int64
	for i := 0; i < cl.N(); i++ {
		served += cl.Server(rt.ProcID(i)).Served()
	}
	snap := reg.Snapshot()
	if got := snap.Total("electd_requests_served_total"); got != served {
		t.Fatalf("metrics served %d != servers' %d", got, served)
	}
	if got := snap.Total("electd_elections_started_total"); got != 3 {
		t.Fatalf("started total %d, want 3 (one instance per replica)", got)
	}
	h, ok := snap.Histogram("electd_quorum_roundtrip_usec")
	if !ok || h.Count == 0 {
		t.Fatal("quorum round-trip histogram recorded nothing")
	}
	if got := snap.Total("electd_pool_coalesced_msgs_total"); got == 0 {
		t.Fatal("coalescer totals recorded nothing")
	}
}
