package electd_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/rt"
	"repro/internal/transport"
)

// TestRestartRestoresQuorumMidElection: the crash-recovery regression for
// Cluster.Restart end to end. A majority of servers fails before the
// election starts, so no client can assemble a quorum — they sit in their
// retransmission loops. Restarting one server (replica flag, listener
// rebind, pool redial) restores a live majority, and the retransmitted
// requests must reach the recovered replica and complete the election: if
// any link of the restart sequence is broken, the clients retransmit into
// the void forever and the test times out.
func TestRestartRestoresQuorumMidElection(t *testing.T) {
	for name, mk := range map[string]func() transport.Network{
		"loopback": func() transport.Network { return transport.NewLoopback() },
		"tcp":      func() transport.Network { return transport.NewTCP() },
	} {
		t.Run(name, func(t *testing.T) {
			const n, k = 5, 3
			cl, err := electd.NewCluster(mk(), n)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			// Fail three of five: the two survivors are one short of the
			// ⌊n/2⌋+1 = 3 quorum, so every communicate call stalls.
			for _, id := range []rt.ProcID{2, 3, 4} {
				cl.Crash(id)
			}

			decisions := make([]core.Decision, k)
			var wg sync.WaitGroup
			for i := 0; i < k; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					p := electd.NewParticipant(rt.ProcID(i), n, int64(i)*1e6+1)
					c := cl.NewComm(p, 7, nil)
					c.SetFaults(electd.FaultProfile{Proc: i, Retransmit: time.Millisecond})
					s := core.NewState(p, "leaderelect")
					decisions[i] = core.LeaderElectWithState(c, "elect", s)
				}(i)
			}

			// Let the clients pile up retransmissions against the dead
			// majority, then bring one replica back.
			time.Sleep(20 * time.Millisecond)
			if err := cl.Restart(2); err != nil {
				t.Fatalf("restart server 2: %v", err)
			}

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("election never completed after the restart restored quorum")
			}
			uniqueWinner(t, name, decisions)
		})
	}
}
