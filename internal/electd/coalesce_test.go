package electd

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/wire"
)

// gateConn is a transport.Conn stub whose SendEncoded blocks until
// released, capturing every frame — the tool for forcing deterministic
// coalescing: while the first flush is stuck in the transport, everything
// else enqueued must pile into the next batch.
type gateConn struct {
	gate   chan struct{}
	mu     sync.Mutex
	frames [][]byte
}

func (g *gateConn) Send(m *wire.Msg) error {
	frame, err := wire.Append(nil, m)
	if err != nil {
		return err
	}
	return g.SendEncoded(frame)
}

func (g *gateConn) SendEncoded(frame []byte) error {
	<-g.gate
	g.mu.Lock()
	g.frames = append(g.frames, append([]byte(nil), frame...))
	g.mu.Unlock()
	return nil
}

func (g *gateConn) Close() error { return nil }

// encodeAck returns one encoded ack frame with the given call id.
func encodeAck(t *testing.T, call uint64) []byte {
	t.Helper()
	frame, err := wire.Append(nil, &wire.Msg{Kind: wire.KindAck, Call: call})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestCoalescerBatchesUnderLoad: messages enqueued while a flush is in
// flight ride one multi-op frame; a lone message travels as its own plain
// frame. This is the group-commit contract, pinned deterministically.
func TestCoalescerBatchesUnderLoad(t *testing.T) {
	g := &gateConn{gate: make(chan struct{})}
	co := &coalescer{conn: g}

	first := make(chan struct{})
	go func() {
		co.enqueue(encodeAck(t, 1)) // becomes the flusher, blocks in SendEncoded
		close(first)
	}()
	// Wait until the flusher has actually taken the batch (flushing set and
	// buffer drained), then pile on.
	for {
		co.mu.Lock()
		started := co.flushing && co.count == 0
		co.mu.Unlock()
		if started {
			break
		}
		runtime.Gosched()
	}
	for call := uint64(2); call <= 5; call++ {
		co.enqueue(encodeAck(t, call)) // flusher active: enqueue and leave
	}
	close(g.gate)
	<-first
	// The flusher loops until the batch is empty; wait for it to finish.
	for {
		co.mu.Lock()
		done := !co.flushing
		co.mu.Unlock()
		if done {
			break
		}
		runtime.Gosched()
	}

	g.mu.Lock()
	frames := g.frames
	g.mu.Unlock()
	if len(frames) != 2 {
		t.Fatalf("sent %d frames, want 2 (plain + batch)", len(frames))
	}
	one, err := wire.DecodeFrames(nil, mustBody(t, frames[0]))
	if err != nil || len(one) != 1 || one[0].Call != 1 {
		t.Fatalf("first frame: %v %+v", err, one)
	}
	batch, err := wire.DecodeFrames(nil, mustBody(t, frames[1]))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("second frame carries %d messages, want the 4 that accumulated", len(batch))
	}
	for i, m := range batch {
		if m.Call != uint64(i+2) {
			t.Fatalf("batch order broken: slot %d has call %d", i, m.Call)
		}
	}
	if msgs, fr := co.msgs.Load(), co.frames.Load(); msgs != 5 || fr != 2 {
		t.Fatalf("stats: %d msgs in %d frames, want 5 in 2", msgs, fr)
	}
}

// mustBody strips a frame's length prefix.
func mustBody(t *testing.T, frame []byte) []byte {
	t.Helper()
	size := frame[0] // test frames are tiny; single-byte prefix
	body := frame[1:]
	if int(size) != len(body) {
		t.Fatalf("frame prefix %d != body %d", size, len(body))
	}
	return body
}
