package electd

import (
	"strconv"

	"repro/internal/obs"
)

// Metric registration for the election service. Everything here is
// read-side: the instruments are func-backed views over the atomics and
// shard maps the service maintains anyway, so a metrics-enabled server or
// pool runs the exact same hot path as a bare one — the only new work
// happens at snapshot (scrape) time. The per-replica instruments carry a
// server="<id>" label so n in-process replicas share one registry without
// colliding; obs.Snapshot.Total sums across them.

// registerMetrics exposes the server's lifecycle instruments on r.
func (s *Server) registerMetrics(r *obs.Registry) {
	l := obs.L("server", strconv.Itoa(int(s.id)))
	r.NewCounterFunc("electd_requests_served_total", "requests answered (propagates, collects, busy replies)", s.Served, l)
	r.NewCounterFunc("electd_elections_started_total", "election instances created", s.started.Load, l)
	r.NewCounterFunc("electd_elections_evicted_total", "instances reclaimed by the sweeper (TTL + LRU + drain)", s.evicted.Load, l)
	r.NewCounterFunc("electd_elections_removed_total", "instances evicted by explicit RemoveElection", s.removed.Load, l)
	r.NewCounterFunc("electd_admission_shed_total", "propagates refused with a busy reply", s.shed.Load, l)
	r.NewGaugeFunc("electd_elections_live", "election instances currently holding state", func() int64 {
		return int64(s.Elections())
	}, l)
	r.NewGaugeFunc("electd_draining", "1 while the server is draining", func() int64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	}, l)
}

// quorumLatencyBounds buckets quorum round trips in microseconds: 25µs to
// ~800ms, factor-2 — loopback in-process calls land in the first buckets,
// a congested TCP quorum in the middle, and stalls in the overflow.
var quorumLatencyBounds = obs.ExpBuckets(25, 2, 16)

// batchSizeBounds buckets coalescer flushes by messages per frame:
// 1 (no batching win) up to the transport's maxCoalesce-scale runs.
var batchSizeBounds = obs.ExpBuckets(1, 2, 9)

// registerMetrics exposes the pool's client-side instruments on r and
// installs the two hot-path histograms (quorum round-trip latency, batch
// sizes). Called from DialPoolOpts when PoolOptions.Metrics is set.
func (pl *Pool) registerMetrics(r *obs.Registry) {
	r.NewGaugeFunc("electd_pending_calls", "communicate calls awaiting quorum replies", func() int64 {
		var n int64
		for i := range pl.shards {
			sh := &pl.shards[i]
			sh.mu.Lock()
			n += int64(len(sh.calls))
			sh.mu.Unlock()
		}
		return n
	})
	r.NewCounterFunc("electd_pool_coalesced_msgs_total", "messages sent through the pool's coalescers", func() int64 {
		msgs, _ := pl.CoalesceStats()
		return msgs
	})
	r.NewCounterFunc("electd_pool_frames_total", "wire frames the pool's coalescers emitted", func() int64 {
		_, frames := pl.CoalesceStats()
		return frames
	})
	r.NewCounterFunc("electd_busy_shed_total", "quorum calls aborted by a server's busy reply", pl.busy.Load)
	pl.rpcHist = r.NewHistogram("electd_quorum_roundtrip_usec", "quorum round-trip latency, microseconds", quorumLatencyBounds)
	pl.batchHist = r.NewHistogram("electd_coalesce_batch_msgs", "messages per coalescer flush", batchSizeBounds)
	for j := range pl.links {
		link := pl.links[j].Load()
		if link == nil {
			continue
		}
		for _, co := range link.cos {
			co.hist = pl.batchHist
		}
	}
}
