package electd

import (
	"sort"
	"sync/atomic"

	"repro/internal/rt"
	"repro/internal/wire"
)

// Lock-free register state for one election instance, in the style of
// Alistarh–Gelashvili–Vladu's model: the paper's processors communicate
// through atomic registers, and this file makes the reproduction's server
// hot path match — steady-state propagates and collects touch no mutex.
//
// The structure is RCU over immutable values with per-cell CAS beneath:
//
//   - store.regs is an atomically published immutable directory
//     (register name → *regArray). Adding a register — once per register
//     name per instance — copies the directory and CASes the pointer.
//   - regArray.cells is the same one level down (owner → *cellSlot);
//     adding a slot happens once per owner per register.
//   - a cellSlot holds an atomic pointer to an immutable cellVal. A merge
//     is a CAS on that pointer guarded by the writer version: higher
//     sequence numbers win, exactly the versioning rule the mutex-guarded
//     store enforced, now enforced by the retry loop instead of the lock.
//   - regArray.snap is the RCU-published snapshot: an immutable bundle of
//     the owner-ordered entries and their cached wire encoding, tagged
//     with the array version it was built at. Collects load it with one
//     atomic read; a winning merge bumps the version, which lazily
//     invalidates the published snapshot (the next collect rebuilds and
//     re-publishes). A published snapshot is never mutated — readers
//     holding one keep a consistent view forever.
//
// Progress: every operation is lock-free (a stalled reader or writer
// cannot block others; CAS retries only when somebody else made
// progress). Snapshot rebuilds can duplicate work under races, which
// costs cycles, never correctness: publication CASes from the observed
// old snapshot, and the version tag makes any stale publication
// self-correcting on the next read.
//
// What stays on the shard mutex is lifecycle, not steady state: instance
// create (admission control needs an exact live count), evict, and
// restart. See Server.Handle.

// store is one election instance's register state on one server. Both
// fields are lock-free: regs is the RCU register directory, last the
// instance's idle clock — the UnixNano of the most recent request that
// touched it — which the sweeper compares against the TTL and the drain
// idle bar.
type store struct {
	regs atomic.Pointer[regDir]
	last atomic.Int64
}

// regDir is the immutable published directory of an instance's register
// arrays. Mutation = copy + CAS (see store.array).
type regDir = map[string]*regArray

// newStore builds an instance with an empty published directory.
func newStore() *store {
	st := &store{}
	dir := regDir{}
	st.regs.Store(&dir)
	return st
}

// regArray is one register array: per-owner CAS cells beneath an
// RCU-published snapshot.
type regArray struct {
	// version counts winning merges. A snapshot is current iff its ver
	// equals this counter; merges bump it after their cell CAS succeeds,
	// so any reader that observes the new version also observes the cell
	// write that caused it.
	version atomic.Uint64
	cells   atomic.Pointer[cellDir]
	snap    atomic.Pointer[snapshot]
}

// cellDir is the immutable published owner → slot directory of one array.
type cellDir = map[rt.ProcID]*cellSlot

// cellSlot is one owner's cell: an atomic pointer to the immutable
// current value. The slot itself is permanent once published in a
// cellDir; only the value pointer moves.
type cellSlot struct {
	v atomic.Pointer[cellVal]
}

// cellVal is one immutable register-cell state under writer versioning.
type cellVal struct {
	seq uint64
	val rt.Value
}

// snapshot is the RCU-published view of one register array: the
// owner-ordered entries and their encoded reply tail (wire.AppendEntries),
// valid at array version ver. Published snapshots are immutable — a
// winning merge makes them stale, never different.
type snapshot struct {
	ver     uint64
	entries []rt.Entry
	enc     []byte
}

// newRegArray builds an array with an empty published cell directory.
func (st *store) newRegArray() *regArray {
	arr := &regArray{}
	dir := cellDir{}
	arr.cells.Store(&dir)
	return arr
}

// array returns the register array for reg, creating and publishing it on
// first use. Lock-free: creation copies the directory and CASes the
// pointer, retrying if a concurrent creator won (and adopting its array).
func (st *store) array(reg string) *regArray {
	for {
		dirp := st.regs.Load()
		if arr := (*dirp)[reg]; arr != nil {
			return arr
		}
		next := make(regDir, len(*dirp)+1)
		for k, v := range *dirp {
			next[k] = v
		}
		arr := st.newRegArray()
		next[reg] = arr
		if st.regs.CompareAndSwap(dirp, &next) {
			return arr
		}
	}
}

// slot returns owner's cell slot of arr, creating and publishing it on
// first use, with the same copy-and-CAS discipline as store.array.
func (arr *regArray) slot(owner rt.ProcID) *cellSlot {
	for {
		dirp := arr.cells.Load()
		if s := (*dirp)[owner]; s != nil {
			return s
		}
		next := make(cellDir, len(*dirp)+1)
		for k, v := range *dirp {
			next[k] = v
		}
		s := &cellSlot{}
		next[owner] = s
		if arr.cells.CompareAndSwap(dirp, &next) {
			return s
		}
	}
}

// merge applies an entry under writer versioning: higher sequence numbers
// win, enforced by a CAS retry loop on the owner's cell. A losing merge
// (stale seq) is a no-op and leaves the published snapshot valid; a
// winning merge installs the new immutable cell value and bumps the array
// version, lazily invalidating the snapshot.
func (st *store) merge(e rt.Entry) {
	arr := st.array(e.Reg)
	s := arr.slot(e.Owner)
	for {
		cur := s.v.Load()
		if cur != nil && e.Seq <= cur.seq {
			return // losing merge: a newer (or equal) write already holds the cell
		}
		if s.v.CompareAndSwap(cur, &cellVal{seq: e.Seq, val: e.Val}) {
			arr.version.Add(1)
			return
		}
		// A concurrent merge moved the cell; reload and re-decide.
	}
}

// snapshotTail returns the encoded view tail (entry count + entries, in
// owner order — the canonical order both backends' stores use) of one
// register array, with zero locking: the common case is one atomic load
// of the published snapshot. When a merge has won since it was built, the
// caller rebuilds from the CAS cells and re-publishes; concurrent
// rebuilds may duplicate that work but each returns a valid snapshot, and
// the version tag keeps any stale publication self-correcting. hit
// reports whether the published encoding was served as-is (tracing
// detail; an empty or absent array counts as a hit — nothing was
// rebuilt). The returned bytes are immutable.
func (st *store) snapshotTail(reg string) (tail []byte, hit bool) {
	dirp := st.regs.Load()
	arr := (*dirp)[reg]
	if arr == nil {
		return emptyTail, true
	}
	// Version first, cells second: a snapshot built from cells read after
	// loading version V contains at least every merge version V counted,
	// and any later merge bumps the version past V, so tagging the build
	// with V can hide nothing — at worst the build is fresher than its
	// tag and the next collect rebuilds once more.
	ver := arr.version.Load()
	if snap := arr.snap.Load(); snap != nil && snap.ver == ver {
		return snap.enc, true
	}
	snap := arr.rebuild(reg, ver)
	if snap == nil {
		return emptyTail, false
	}
	if len(snap.entries) == 0 {
		return emptyTail, true
	}
	return snap.enc, false
}

// rebuild assembles and publishes a fresh snapshot of arr at version ver.
// It returns nil only for values outside the codec's domain — impossible
// for state that arrived through the codec; treated as an empty view
// rather than corrupting the stream.
func (arr *regArray) rebuild(reg string, ver uint64) *snapshot {
	old := arr.snap.Load()
	dirp := arr.cells.Load()
	out := make([]rt.Entry, 0, len(*dirp))
	for owner, s := range *dirp {
		if cv := s.v.Load(); cv != nil {
			out = append(out, rt.Entry{Reg: reg, Owner: owner, Seq: cv.seq, Val: cv.val})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	snap := &snapshot{ver: ver, entries: out}
	if len(out) > 0 {
		enc, err := wire.AppendEntries(nil, reg, out)
		if err != nil {
			return nil
		}
		snap.enc = enc
	}
	// Publish unless somebody else already did: CAS from the observed old
	// snapshot, so a concurrent publication is never overwritten blindly.
	// If the CAS loses, the winner's snapshot serves future collects and
	// ours serves this one — both are valid at their tagged versions.
	if old == nil || old.ver <= ver {
		arr.snap.CompareAndSwap(old, snap)
	}
	return snap
}
