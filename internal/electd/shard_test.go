package electd_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/wire"
)

// nullConn is a transport.Conn stub for driving Server.Handle directly;
// it counts the replies the server hands it.
type nullConn struct {
	sends atomic.Int64
}

func (c *nullConn) Send(m *wire.Msg) error { c.sends.Add(1); return nil }
func (c *nullConn) SendEncoded(frame []byte) error {
	c.sends.Add(1)
	wire.PutBuf(frame)
	return nil
}
func (c *nullConn) Close() error { return nil }

// propagateMsg builds one single-entry propagate request for an election.
func propagateMsg(election uint64, reg string, owner rt.ProcID, seq uint64, val rt.Value) *wire.Msg {
	return &wire.Msg{
		Kind: wire.KindPropagate, Election: election, Call: seq, From: owner, Reg: reg,
		Entries: []rt.Entry{{Reg: reg, Owner: owner, Seq: seq, Val: val}},
	}
}

// TestRemoveElectionIsShardLocal: state lands in per-election shards,
// RemoveElection evicts exactly the target instance, and the served
// counter — summed across shards — sees every answered request.
func TestRemoveElectionIsShardLocal(t *testing.T) {
	srv := electd.NewServer(0)
	conn := &nullConn{}
	const elections = 100
	for e := uint64(1); e <= elections; e++ {
		srv.Handle(conn, propagateMsg(e, "r", 1, 1, int(e)))
	}
	if got := srv.Elections(); got != elections {
		t.Fatalf("Elections() = %d, want %d", got, elections)
	}
	if got := srv.Served(); got != elections {
		t.Fatalf("Served() = %d, want %d", got, elections)
	}
	srv.RemoveElection(7)
	if got := srv.Elections(); got != elections-1 {
		t.Fatalf("Elections() after removal = %d, want %d", got, elections-1)
	}
	// Removing an absent instance is a no-op, not a panic.
	srv.RemoveElection(7)
	srv.RemoveElection(elections + 50)
	if got := srv.Elections(); got != elections-1 {
		t.Fatalf("Elections() after no-op removals = %d, want %d", got, elections-1)
	}
	// The removed instance's registers are gone: a collect answers the
	// empty view; the others still answer theirs.
	srv.Handle(conn, &wire.Msg{Kind: wire.KindCollect, Election: 7, Call: 200, From: 1, Reg: "r"})
	srv.Handle(conn, &wire.Msg{Kind: wire.KindCollect, Election: 8, Call: 201, From: 1, Reg: "r"})
	if got := srv.Served(); got != elections+2 {
		t.Fatalf("Served() after collects = %d, want %d", got, elections+2)
	}
}

// TestCrashRestartServerLevel: a crashed replica drops requests without
// replying; Restart revives it with its pre-crash register state intact.
func TestCrashRestartServerLevel(t *testing.T) {
	srv := electd.NewServer(0)
	conn := &nullConn{}
	srv.Handle(conn, propagateMsg(1, "r", 2, 1, "pre-crash"))
	if got := conn.sends.Load(); got != 1 {
		t.Fatalf("replies before crash = %d, want 1", got)
	}
	srv.Crash()
	if !srv.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	srv.Handle(conn, propagateMsg(1, "r", 2, 2, "lost"))
	srv.Handle(conn, &wire.Msg{Kind: wire.KindCollect, Election: 1, Call: 9, From: 2, Reg: "r"})
	if got := conn.sends.Load(); got != 1 {
		t.Fatalf("a crashed server replied (%d sends)", got)
	}
	srv.Restart()
	if srv.Crashed() {
		t.Fatal("Crashed() true after Restart")
	}
	srv.Handle(conn, &wire.Msg{Kind: wire.KindCollect, Election: 1, Call: 10, From: 2, Reg: "r"})
	if got := conn.sends.Load(); got != 2 {
		t.Fatalf("restarted server did not reply (%d sends)", got)
	}
	if got := srv.Served(); got != 2 {
		t.Fatalf("Served() = %d, want 2 (crashed-window requests are lost)", got)
	}
}

// TestTeardownChurnUnderConcurrency is the teardown safety net for the
// sharded maps: many multiplexed elections run concurrently while finished
// instances are removed from the servers and a minority replica crashes
// and restarts in a loop. Every election must still decide a unique winner
// — a lost or cross-wired reply would surface as a hung run (no quorum), a
// double win, or an undecided participant. Run it under -race: the shard
// locks, the churned maps and the crash flag are exactly the state the
// sharding refactor split up.
func TestTeardownChurnUnderConcurrency(t *testing.T) {
	const (
		n         = 5
		k         = 3
		elections = 32
	)
	cl, err := electd.NewCluster(transport.NewLoopback(), n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	finished := make(chan uint64, elections)
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	// Teardown churn: evict each instance's state as soon as its run ends,
	// while elections on other shards are still in full flight.
	go func() {
		defer churn.Done()
		for e := range finished {
			cl.RemoveElection(e)
		}
	}()
	// Crash/restart churn on one replica — within the ⌈n/2⌉−1 budget, so
	// quorum liveness holds throughout. Server-level only: the loopback
	// connections stay up, the replica just drops requests while down.
	go func() {
		defer churn.Done()
		victim := cl.Server(rt.ProcID(n - 1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim.Crash()
			time.Sleep(200 * time.Microsecond)
			victim.Restart()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	results := make([][]core.Decision, elections)
	for e := 0; e < elections; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			id := cl.NextElectionID()
			results[e] = electOnce(t, cl, id, k, int64(e)*977+1)
			finished <- id
		}(e)
	}
	wg.Wait()
	close(finished)
	close(stop)
	churn.Wait()

	for e, decisions := range results {
		uniqueWinner(t, fmt.Sprintf("churned election %d", e), decisions)
	}
	// The churned servers must have answered throughout.
	var served int64
	for i := 0; i < n; i++ {
		served += cl.Server(rt.ProcID(i)).Served()
	}
	if served == 0 {
		t.Fatal("no server answered anything")
	}
}
