package electd

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/rt"
	"repro/internal/transport"
)

// Cluster bundles a full quorum system in one process: n servers, each
// behind its own transport listener, plus a connection pool dialled to all
// of them. It is the harness the live backend's TCP mode, the campaign
// engine and the tests build on; a production deployment instead runs one
// `electd` process per server and DialPool from each client process.
type Cluster struct {
	n         int
	servers   []*Server
	listeners []transport.Listener
	pool      *Pool
	elections atomic.Uint64
}

// ClusterOptions tunes both halves of an in-process cluster: the shared
// client pool and every server's lifecycle. The same ServerOptions apply
// to all n replicas (they are one deployment); per-replica policy needs a
// hand-built cluster.
type ClusterOptions struct {
	Pool   PoolOptions
	Server ServerOptions
}

// NewCluster starts n servers on the network and dials the shared pool,
// with the pool's frame coalescing on.
func NewCluster(nw transport.Network, n int) (*Cluster, error) {
	return NewClusterOpts(nw, n, PoolOptions{})
}

// NewClusterOpts is NewCluster with explicit pool options.
func NewClusterOpts(nw transport.Network, n int, opts PoolOptions) (*Cluster, error) {
	return NewClusterWith(nw, n, ClusterOptions{Pool: opts})
}

// NewClusterSpec starts an in-process cluster under a transport spec: the
// servers listen and the pool dials on the substrate the spec names, with
// the spec's knobs folded into the pool options exactly as NewPool does —
// including the default retransmit layer on unreliable substrates. The
// symmetric counterpart of NewPool for single-process deployments.
func NewClusterSpec(spec transport.Spec, n int, opts ClusterOptions) (*Cluster, error) {
	nw, err := spec.Network()
	if err != nil {
		return nil, err
	}
	opts.Pool = mergeSpec(spec, opts.Pool)
	if opts.Server.Trace == nil {
		opts.Server.Trace = spec.Trace
	}
	return NewClusterWith(nw, n, opts)
}

// NewClusterWith is NewCluster with the full option set, server lifecycle
// included.
func NewClusterWith(nw transport.Network, n int, opts ClusterOptions) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("electd: cluster size %d must be at least 1", n)
	}
	cl := &Cluster{n: n}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := NewServerOpts(rt.ProcID(i), opts.Server)
		ln, err := nw.Listen(srv.Handle)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("electd: listen server %d: %w", i, err)
		}
		cl.servers = append(cl.servers, srv)
		cl.listeners = append(cl.listeners, ln)
		addrs[i] = ln.Addr()
	}
	pool, err := DialPoolOpts(nw, addrs, opts.Pool)
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.pool = pool
	return cl, nil
}

// N returns the quorum system size.
func (cl *Cluster) N() int { return cl.n }

// Addrs returns the servers' dialable addresses, indexed by server id.
func (cl *Cluster) Addrs() []string {
	out := make([]string, len(cl.listeners))
	for i, ln := range cl.listeners {
		out[i] = ln.Addr()
	}
	return out
}

// Pool returns the cluster's shared client pool.
func (cl *Cluster) Pool() *Pool { return cl.pool }

// Server returns replica id (for stats and tests).
func (cl *Cluster) Server(id rt.ProcID) *Server { return cl.servers[id] }

// NextElectionID hands out a fresh election-instance ID; concurrent
// campaigns over one shared cluster must not collide on IDs.
func (cl *Cluster) NextElectionID() uint64 { return cl.elections.Add(1) }

// NewComm returns participant p's communicate handle for one election on
// this cluster. See Pool.NewComm.
func (cl *Cluster) NewComm(p rt.Procer, election uint64, delay func(server int) time.Duration) *Client {
	return cl.pool.NewComm(p, election, delay)
}

// RemoveElection evicts one finished election instance's register state
// from every server, bounding a long-lived shared cluster's memory. Only
// call it once every participant of the instance has returned. Removal
// touches only the instance's shard on each server, so teardown churn
// never blocks unrelated elections.
func (cl *Cluster) RemoveElection(election uint64) {
	for _, srv := range cl.servers {
		srv.RemoveElection(election)
	}
}

// Crash fails server id: its replica drops requests and its listener drops
// every connection — the network expression of a processor crash. With at
// most ⌈n/2⌉−1 crashed servers every quorum call still completes.
func (cl *Cluster) Crash(id rt.ProcID) {
	if int(id) >= len(cl.servers) {
		return
	}
	cl.servers[id].Crash()
	cl.listeners[id].Crash()
}

// Restart recovers a crashed server end to end: the replica resumes
// answering (with the register state it held at the crash — see
// Server.Restart), its listener re-arms at the original address, and the
// shared pool redials it, so the recovered replica serves quorum calls
// again mid-election. The inverse of Crash; a no-op error if the
// listener's transport cannot recover.
func (cl *Cluster) Restart(id rt.ProcID) error {
	if int(id) >= len(cl.servers) {
		return fmt.Errorf("electd: restart server %d of a %d-server cluster", id, cl.n)
	}
	rec, ok := cl.listeners[id].(transport.Recoverer)
	if !ok {
		return fmt.Errorf("electd: server %d's listener (%T) cannot recover", id, cl.listeners[id])
	}
	// Replica first: the instant the listener accepts again, requests must
	// find a serving replica, not the drop-everything switch still on.
	cl.servers[id].Restart()
	if err := rec.Recover(); err != nil {
		return err
	}
	return cl.pool.Redial(int(id))
}

// BeginDrain puts every server into drain mode: new elections are refused
// with busy replies, in-flight ones keep being served. See Server.Drain
// for the full graceful-shutdown sequence.
func (cl *Cluster) BeginDrain() {
	for _, srv := range cl.servers {
		srv.BeginDrain()
	}
}

// Drain gracefully quiesces every server: stop admitting, wait for live
// elections to go idle, evicting them as they do. The timeout covers the
// whole cluster; the first deadline miss is returned (remaining servers
// still flip to draining via BeginDrain above them having been drained).
func (cl *Cluster) Drain(timeout time.Duration) error {
	cl.BeginDrain()
	deadline := time.Now().Add(timeout)
	var first error
	for _, srv := range cl.servers {
		remain := time.Until(deadline)
		if remain < 0 {
			remain = 0
		}
		if err := srv.Drain(remain); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close waits out in-flight delayed sends, then tears down the pool, every
// listener, and every server's sweeper. Call after all participants have
// returned.
func (cl *Cluster) Close() error {
	var first error
	if cl.pool != nil {
		first = cl.pool.Close()
	}
	for _, ln := range cl.listeners {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, srv := range cl.servers {
		srv.Close() //nolint:errcheck // always nil
	}
	return first
}
