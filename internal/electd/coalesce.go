package electd

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// coalescer merges the concurrent quorum messages bound for one server
// into batched multi-op frames, group-commit style: the first enqueuer
// becomes the flusher, and every message that arrives while a flush is in
// progress rides the next batch. Under load — many participants or many
// multiplexed elections sharing the pool's one connection per server —
// whole broadcast waves collapse into single frames (one write-queue hand-
// off, one syscall, one reply batch coming back); an idle connection still
// sends a lone message immediately, as the plain frame it already is, so
// coalescing never trades latency for throughput.
type coalescer struct {
	conn transport.Conn

	mu       sync.Mutex
	buf      []byte // pending pre-encoded frames, concatenated; from wire.GetBuf
	count    int
	flushing bool

	msgs   atomic.Int64 // messages enqueued
	frames atomic.Int64 // frames actually sent (≤ msgs; the gap is the win)

	// hist, when set (Pool.registerMetrics), records each flush's batch
	// size — the observable distribution behind the msgs/frames ratio.
	// Installed before traffic flows; nil on a bare pool.
	hist *obs.Histogram
}

// enqueue adds one pre-encoded frame (length prefix included) to the
// server's pending batch. The bytes are copied, so the caller keeps
// ownership of frame. If no flush is in progress the calling goroutine
// flushes — the group-commit bargain: everyone else enqueues and leaves.
func (co *coalescer) enqueue(frame []byte) {
	co.mu.Lock()
	if co.buf == nil {
		co.buf = wire.GetBuf()
	}
	co.buf = append(co.buf, frame...)
	co.count++
	if co.flushing {
		co.mu.Unlock()
		return
	}
	co.flushing = true
	co.mu.Unlock()
	co.flush()
}

// flush drains the pending batch — repeatedly, since new messages
// accumulate while the previous frame is being handed to the transport —
// and clears the flushing flag only once the batch is empty. Send errors
// are message loss, the model's prerogative for a dead link.
func (co *coalescer) flush() {
	for {
		co.mu.Lock()
		buf, count := co.buf, co.count
		co.buf, co.count = nil, 0
		if count == 0 {
			co.flushing = false
			co.mu.Unlock()
			return
		}
		co.mu.Unlock()
		co.msgs.Add(int64(count))
		co.frames.Add(1)
		if co.hist != nil {
			co.hist.Observe(int64(count))
		}
		if count == 1 {
			// A single length-prefixed frame is already the wire form.
			co.conn.SendEncoded(buf) //nolint:errcheck
			continue
		}
		batch, err := wire.AppendBatchFrame(wire.GetBuf(), count, buf)
		if err != nil {
			// A batch too big for one frame (pathological at MaxFrame
			// scale): fall back to sending the accumulated frames one by
			// one, preserving delivery over efficiency.
			wire.PutBuf(batch)
			co.frames.Add(int64(count) - 1)
			for rest := buf; len(rest) > 0; {
				size, n := binary.Uvarint(rest)
				end := n + int(size)
				one := append(wire.GetBuf(), rest[:end]...)
				co.conn.SendEncoded(one) //nolint:errcheck
				rest = rest[end:]
			}
			wire.PutBuf(buf)
			continue
		}
		wire.PutBuf(buf)
		co.conn.SendEncoded(batch) //nolint:errcheck
	}
}
