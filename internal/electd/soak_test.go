package electd_test

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/electd"
)

// TestSoakServiceEndurance: the compressed in-CI soak — thousands of short
// elections over one long-running TTL-evicting cluster, asserting the full
// SoakReport.Check contract: unique winners everywhere, eviction running,
// no state accumulation, a flat heap, and /metrics totals equal to the
// service's own counters. ELECTD_SOAK_ELECTIONS scales it up to the real
// thing (the acceptance run uses 100k+; `electd -soak` is the same harness
// from the command line).
func TestSoakServiceEndurance(t *testing.T) {
	elections := 3000
	if testing.Short() {
		elections = 600
	}
	if env := os.Getenv("ELECTD_SOAK_ELECTIONS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("ELECTD_SOAK_ELECTIONS=%q: %v", env, err)
		}
		elections = v
	}
	rep, err := electd.Soak(electd.SoakConfig{
		Elections: elections,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d elections (%d shed, %d invalid), served %d, evicted %d, final live %d, heap %.0f → %.0f bytes",
		rep.Elections, rep.Shed, rep.Invalid, rep.Served, rep.Evicted, rep.FinalLive, rep.FirstQMean, rep.LastQMean)
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
}
