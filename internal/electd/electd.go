// Package electd is the election service: the long-lived daemon half of the
// network subsystem, hosting the paper's register arrays behind quorum
// reads and writes, plus the client side participants use to run elections
// against a set of servers over a real transport.
//
// The deployment shape follows Attiya–Bar-Noy–Dolev emulation as practised
// by production coordination services: n *servers* replicate the register
// state (a majority of them must stay up — the paper's ⌈n/2⌉−1 crash
// bound), while any number of *participants* run the election algorithms as
// clients, each communicate call broadcasting to all n servers and waiting
// for ⌊n/2⌋+1 answers. Any two quorums intersect in a correct server, which
// is the only property the paper's proofs use — so PoisonPill, the
// tournament and the sifting rounds run unchanged through rt.Comm.
//
// One server set multiplexes many concurrent election instances: every
// frame carries an election ID, and servers keep disjoint register state
// per ID (the paper's "protocols for different rounds are completely
// disjoint" taken one level up). That is what lets internal/campaign fan
// hundreds of elections over a single set of listening servers instead of
// building a cluster per run. Because instances are disjoint, both halves
// of the service shard by election: the server's state and the client
// pool's routing tables split into fixed lock-striped shards, so two
// concurrent elections never serialize on the same mutex — an engineering
// layer beneath the quorum semantics, which are untouched.
//
// Composition: Server is the passive replica (give its Handle to a
// transport Listener); Pool is a client-process connection pool over the n
// servers; Client is one participant's rt.Comm in one election; Cluster
// bundles n servers plus a pool in one process for tests, benchmarks and
// the live backend's TCP mode; Participant is a minimal rt.Procer for
// driving elections from processes that are not live-backend runs
// (cmd/electd).
package electd

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// serverShards is the number of lock stripes an election server splits its
// state into — a fixed power of two so shard selection is a multiply and a
// shift. 16 stripes keep the per-shard collision probability low for any
// realistic number of concurrently multiplexed elections while costing
// sixteen small maps' worth of idle memory per server.
const (
	serverShardBits = 4
	serverShards    = 1 << serverShardBits
)

// electionShard maps an election ID to its shard index via Fibonacci
// hashing: sequential IDs (the common case — Cluster.NextElectionID is a
// counter) land round-robin, and adversarial or sparse ID patterns still
// spread, because the golden-ratio multiply mixes all input bits into the
// top ones.
func electionShard(election uint64) uint64 {
	return (election * 0x9E3779B97F4A7C15) >> (64 - serverShardBits)
}

// shard is one stripe of a Server: the election instances whose IDs hash
// here, published as an RCU map, plus the stripe's mutex — which guards
// *mutation* of the instance set only (create, evict, restart), never a
// steady-state request — and the stripe's share of the served counter.
// Request paths load the published map with one atomic read; lifecycle
// operations copy it, mutate the copy, and republish under mu. The
// trailing pad keeps neighbouring stripes' hot fields off one cache line,
// so two cores serving disjoint elections do not false-share.
type shard struct {
	mu     sync.Mutex
	live   atomic.Pointer[electionMap]
	served atomic.Int64

	_ [40]byte // pad to a cache line; see struct comment
}

// electionMap is the immutable published election ID → instance map of one
// shard. Mutation = copy + republish under shard.mu.
type electionMap = map[uint64]*store

// instances returns the shard's current published instance map. The map is
// immutable — index it, iterate it, never write it.
func (sh *shard) instances() electionMap { return *sh.live.Load() }

// Server is one register replica: it merges propagated entries and answers
// collects with snapshots, never initiating traffic. State is striped
// across serverShards independent shards keyed by election ID — elections
// are disjoint by construction, so requests of different elections touch
// different locks and a server does O(1) map work per message with
// contention only among the participants of one instance.
//
// A long-lived server is a real service, not a benchmark fixture, so its
// election state has a lifecycle (see ServerOptions): idle instances are
// TTL-evicted by a background sweeper, a per-shard live-instance bound
// sheds new elections with busy replies when exceeded, and BeginDrain
// flips the server into a stop-admitting mode for graceful shutdown. All
// of it defaults to off — a zero-options server behaves exactly like the
// pre-lifecycle one and retains state until RemoveElection.
type Server struct {
	id     rt.ProcID
	opts   ServerOptions
	shards [serverShards]shard

	crashed  atomic.Bool
	draining atomic.Bool

	// Lifecycle counters, summed into the admin metrics when registered.
	started atomic.Int64 // election instances created
	evicted atomic.Int64 // instances the sweeper reclaimed (TTL + LRU)
	removed atomic.Int64 // instances evicted by explicit RemoveElection
	shed    atomic.Int64 // propagates refused with a busy reply

	// lockedOps counts request-path shard-mutex acquisitions. With the
	// lock-free hot path the only request that may lock is a propagate
	// whose election instance does not exist yet (admission control needs
	// an exact live count); steady-state propagates and collects never
	// touch it. Tests assert a zero delta across steady-state load, which
	// is the repo's measured statement of "the collect path performs zero
	// mutex acquisitions".
	lockedOps atomic.Int64

	sweepStop chan struct{}
	sweepDone chan struct{}
	closeOnce sync.Once
}

// NewServer creates replica id (the identity stamped on its views) with
// the zero lifecycle options: no eviction, no admission bound, no metrics.
func NewServer(id rt.ProcID) *Server {
	return NewServerOpts(id, ServerOptions{})
}

// ID returns the replica's identity.
func (s *Server) ID() rt.ProcID { return s.id }

// Served reports how many requests the server has answered, summed across
// its shards.
func (s *Server) Served() int64 {
	var total int64
	for i := range s.shards {
		total += s.shards[i].served.Load()
	}
	return total
}

// Elections reports how many election instances the server currently
// hosts state for, summed across its shards. Reads the published maps, so
// it never contends with request traffic or lifecycle mutation.
func (s *Server) Elections() int {
	total := 0
	for i := range s.shards {
		total += len(s.shards[i].instances())
	}
	return total
}

// LockedOps reports how many requests have acquired a shard mutex — with
// the lock-free hot path, exactly the propagates that created a new
// election instance. Benchmarks and tests use the delta across a
// steady-state window to assert the hot path stayed lock-free.
func (s *Server) LockedOps() int64 { return s.lockedOps.Load() }

// RemoveElection evicts one election instance's register state. There is
// no in-protocol completion signal (a participant cannot know whether
// others still need the registers), so hosts garbage-collect finished
// instances either explicitly — the campaign engine removes each election
// once its run completes — or via the TTL sweeper (ServerOptions.TTL) on
// standalone daemons. Removal locks only the instance's shard — and only
// its lifecycle half: the shard's map is republished without the
// instance, while in-flight requests keep working on the map they loaded,
// so teardown churn never stalls any request, related or not.
func (s *Server) RemoveElection(election uint64) {
	sh := &s.shards[electionShard(election)]
	sh.mu.Lock()
	cur := sh.instances()
	if _, ok := cur[election]; ok {
		next := make(electionMap, len(cur)-1)
		for k, v := range cur {
			if k != election {
				next[k] = v
			}
		}
		sh.live.Store(&next)
		s.removed.Add(1)
	}
	sh.mu.Unlock()
}

// Crash fails the replica: every subsequent request is dropped unanswered.
// The transport's Listener.Crash handles the connection-level half.
func (s *Server) Crash() { s.crashed.Store(true) }

// Restart revives a crashed replica: it resumes answering with whatever
// register state it held when it crashed — the crash-recovery model of a
// replica whose durable state survived. Restart only flips the replica's
// own drop-everything switch; connections severed by the transport half of
// a crash stay severed until the listener Recovers and clients redial.
// Cluster.Restart performs the full sequence (replica, listener, pool) so
// a fault.Plan's recovery reaches quorum traffic end to end.
func (s *Server) Restart() { s.crashed.Store(false) }

// Crashed reports whether the replica has been crashed.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// emptyTail is the encoded tail of a view over an empty or absent register
// array: an entry count of zero.
var emptyTail = []byte{0}

// Handle is the transport.Handler of the replica: merge propagates, answer
// collects, drop everything else. Replies return over the inbound
// connection — which coalesces them into one batch frame when the requests
// arrived as one (see transport.Handler) — and are assembled directly from
// header fields plus the cached encoded snapshot, so the server never
// builds or walks a reply message. Handle takes ownership of m and of its
// entry storage: the server is a request's terminal consumer (merging
// copies the entries' values, never the slice), so the message recycles
// whole on the way out and the next decode on it reuses the entry array —
// the propagate path's steady state allocates nothing per request.
//
// Admission control lives here: a propagate that would create a new
// election instance while the server is draining, or while the instance's
// shard is at its live-election bound, is answered with a busy reply
// instead — an explicit shed the client surfaces as a BusyError, never
// silent loss. Requests for instances that already exist always proceed
// (in-flight elections are allowed to finish), and collects never create
// state, so they are never shed.
//
// Steady state is lock-free end to end: requests find their instance with
// one atomic load of the shard's published map, merges CAS the register
// cells, and collects serve the RCU-published snapshot (see regstore.go).
// The only request that can touch the shard mutex is a propagate whose
// instance does not exist yet — admission control needs an exact live
// count — and that acquisition is counted in Server.LockedOps so tests
// can hold the hot path to zero. The PShardWait trace phase survives as
// the instance lookup/admission span: in steady state it collapses to the
// cost of an atomic load, which is the point.
func (s *Server) Handle(c transport.Conn, m *wire.Msg) {
	defer wire.RecycleMsg(m)
	if s.crashed.Load() {
		return // a crashed server loses requests, no acknowledgment
	}
	switch m.Kind {
	case wire.KindPropagate:
		rec := s.opts.Trace
		now := time.Now().UnixNano()
		sh := &s.shards[electionShard(m.Election)]
		var lookT0, mergeT0 int64
		if rec != nil {
			lookT0 = trace.Now()
		}
		st := sh.instances()[m.Election]
		if st == nil {
			st = s.admit(sh, m.Election)
			if st == nil {
				s.shed.Add(1)
				sh.served.Add(1)
				s.reply(c, wire.KindBusy, m, nil)
				return
			}
		}
		if rec != nil {
			mergeT0 = trace.Now()
			rec.Record(m.Election, 0, trace.PShardWait, lookT0, mergeT0-lookT0, 0)
		}
		st.last.Store(now)
		for _, e := range m.Entries {
			st.merge(e)
		}
		if rec != nil {
			rec.Record(m.Election, 0, trace.PMerge, mergeT0, trace.Now()-mergeT0, int64(len(m.Entries)))
		}
		sh.served.Add(1)
		s.reply(c, wire.KindAck, m, nil)
	case wire.KindCollect:
		rec := s.opts.Trace
		now := time.Now().UnixNano()
		sh := &s.shards[electionShard(m.Election)]
		var lookT0, snapT0 int64
		if rec != nil {
			lookT0 = trace.Now()
		}
		st := sh.instances()[m.Election]
		if rec != nil {
			snapT0 = trace.Now()
			rec.Record(m.Election, 0, trace.PShardWait, lookT0, snapT0-lookT0, 0)
		}
		tail := emptyTail
		hit := int64(1) // an absent instance or array rebuilds nothing
		if st != nil {
			st.last.Store(now) // reads keep an instance live, like writes
			var cached bool
			tail, cached = st.snapshotTail(m.Reg)
			if !cached {
				hit = 0
			}
		}
		if rec != nil {
			rec.Record(m.Election, 0, trace.PSnapshot, snapT0, trace.Now()-snapT0, hit)
		}
		sh.served.Add(1)
		s.reply(c, wire.KindView, m, tail)
	default:
		// Replies arriving at a server are protocol noise; ignore.
	}
}

// admit resolves a propagate for an election instance the published map
// does not hold: under the shard mutex — the one request-path lock left,
// counted in lockedOps — it re-checks the map (a racing propagate may
// have created the instance), applies admission control, and otherwise
// creates the instance and republishes the map. Returns nil when the
// propagate must be shed with a busy reply.
func (s *Server) admit(sh *shard, election uint64) *store {
	s.lockedOps.Add(1)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.instances()
	if st := cur[election]; st != nil {
		return st
	}
	if s.draining.Load() || (s.opts.MaxLivePerShard > 0 && len(cur) >= s.opts.MaxLivePerShard) {
		return nil
	}
	st := newStore()
	next := make(electionMap, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[election] = st
	sh.live.Store(&next)
	s.started.Add(1)
	return st
}

// reply sends one assembled reply frame for request m. Send errors are
// message loss, as on any dead link.
func (s *Server) reply(c transport.Conn, kind wire.Kind, m *wire.Msg, tail []byte) {
	rec := s.opts.Trace
	var t0 int64
	if rec != nil {
		t0 = trace.Now()
	}
	reg := ""
	if kind == wire.KindView {
		reg = m.Reg
	}
	frame, err := wire.AppendReplyFrame(wire.GetBuf(), kind, m.Election, m.Call, s.id, reg, tail)
	if err != nil {
		wire.PutBuf(frame)
		return // oversized reply: loss
	}
	n := len(frame)
	c.SendEncoded(frame) //nolint:errcheck
	if rec != nil {
		rec.Record(m.Election, 0, trace.PReply, t0, trace.Now()-t0, int64(n))
	}
}
