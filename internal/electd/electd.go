// Package electd is the election service: the long-lived daemon half of the
// network subsystem, hosting the paper's register arrays behind quorum
// reads and writes, plus the client side participants use to run elections
// against a set of servers over a real transport.
//
// The deployment shape follows Attiya–Bar-Noy–Dolev emulation as practised
// by production coordination services: n *servers* replicate the register
// state (a majority of them must stay up — the paper's ⌈n/2⌉−1 crash
// bound), while any number of *participants* run the election algorithms as
// clients, each communicate call broadcasting to all n servers and waiting
// for ⌊n/2⌋+1 answers. Any two quorums intersect in a correct server, which
// is the only property the paper's proofs use — so PoisonPill, the
// tournament and the sifting rounds run unchanged through rt.Comm.
//
// One server set multiplexes many concurrent election instances: every
// frame carries an election ID, and servers keep disjoint register state
// per ID (the paper's "protocols for different rounds are completely
// disjoint" taken one level up). That is what lets internal/campaign fan
// hundreds of elections over a single set of listening servers instead of
// building a cluster per run.
//
// Composition: Server is the passive replica (give its Handle to a
// transport Listener); Pool is a client-process connection pool over the n
// servers; Client is one participant's rt.Comm in one election; Cluster
// bundles n servers plus a pool in one process for tests, benchmarks and
// the live backend's TCP mode; Participant is a minimal rt.Procer for
// driving elections from processes that are not live-backend runs
// (cmd/electd).
package electd

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Server is one register replica: it merges propagated entries and answers
// collects with snapshots, never initiating traffic. All state is guarded
// by one mutex — contention is per-server, and a server does O(1) map work
// per message.
type Server struct {
	id rt.ProcID

	mu        sync.Mutex
	elections map[uint64]*store

	crashed atomic.Bool
	served  atomic.Int64
}

// store is one election instance's register state on one server.
type store struct {
	regs map[string]*regArray
}

type regArray struct {
	cells map[rt.ProcID]cell
	// snap and enc cache the owner-ordered snapshot — decoded and as the
	// encoded reply tail (wire.AppendEntries) — between mutations: collects
	// dominate the quorum traffic (every reader of an array pays one per
	// communicate call), so amortizing the map walk, the sort and the
	// encoding across the collects between two winning merges takes the
	// server's per-collect cost to O(1) plus a memcpy. Neither cache is
	// mutated in place — a winning merge just drops them — so handing them
	// to concurrent replies is safe.
	snap []rt.Entry
	enc  []byte
}

type cell struct {
	seq uint64
	val rt.Value
}

// NewServer creates replica id (the identity stamped on its views).
func NewServer(id rt.ProcID) *Server {
	return &Server{id: id, elections: make(map[uint64]*store)}
}

// ID returns the replica's identity.
func (s *Server) ID() rt.ProcID { return s.id }

// Served reports how many requests the server has answered.
func (s *Server) Served() int64 { return s.served.Load() }

// Elections reports how many election instances the server currently
// hosts state for.
func (s *Server) Elections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.elections)
}

// DropElection evicts one election instance's register state. Register
// state is otherwise retained for the server's lifetime — there is no
// in-protocol completion signal (a participant cannot know whether others
// still need the registers) — so long-running hosts must garbage-collect
// finished instances themselves: the campaign engine drops each election
// once its run completes, and embedders of a standalone daemon should do
// the equivalent when they know an instance is over.
func (s *Server) DropElection(election uint64) {
	s.mu.Lock()
	delete(s.elections, election)
	s.mu.Unlock()
}

// Crash fails the replica: every subsequent request is dropped unanswered.
// The transport's Listener.Crash handles the connection-level half.
func (s *Server) Crash() { s.crashed.Store(true) }

// Crashed reports whether the replica has been crashed.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// emptyTail is the encoded tail of a view over an empty or absent register
// array: an entry count of zero.
var emptyTail = []byte{0}

// Handle is the transport.Handler of the replica: merge propagates, answer
// collects, drop everything else. Replies return over the inbound
// connection — which coalesces them into one batch frame when the requests
// arrived as one (see transport.Handler) — and are assembled directly from
// header fields plus the cached encoded snapshot, so the server never
// builds or walks a reply message. Handle takes ownership of m: the server
// is a request's terminal consumer (merging copies the entries' values),
// so the message returns to the wire package's pool on the way out.
func (s *Server) Handle(c transport.Conn, m *wire.Msg) {
	defer wire.PutMsg(m)
	if s.crashed.Load() {
		return // a crashed server loses requests, no acknowledgment
	}
	switch m.Kind {
	case wire.KindPropagate:
		s.mu.Lock()
		for _, e := range m.Entries {
			s.merge(m.Election, e)
		}
		s.mu.Unlock()
		s.served.Add(1)
		s.reply(c, wire.KindAck, m, nil)
	case wire.KindCollect:
		s.mu.Lock()
		tail := s.snapshotTail(m.Election, m.Reg)
		s.mu.Unlock()
		s.served.Add(1)
		s.reply(c, wire.KindView, m, tail)
	default:
		// Replies arriving at a server are protocol noise; ignore.
	}
}

// reply sends one assembled reply frame for request m. Send errors are
// message loss, as on any dead link.
func (s *Server) reply(c transport.Conn, kind wire.Kind, m *wire.Msg, tail []byte) {
	reg := ""
	if kind == wire.KindView {
		reg = m.Reg
	}
	frame, err := wire.AppendReplyFrame(wire.GetBuf(), kind, m.Election, m.Call, s.id, reg, tail)
	if err != nil {
		wire.PutBuf(frame)
		return // oversized reply: loss
	}
	c.SendEncoded(frame) //nolint:errcheck
}

// merge applies an entry under writer versioning (higher sequence numbers
// win). Callers hold s.mu.
func (s *Server) merge(election uint64, e rt.Entry) {
	st := s.elections[election]
	if st == nil {
		st = &store{regs: make(map[string]*regArray)}
		s.elections[election] = st
	}
	arr := st.regs[e.Reg]
	if arr == nil {
		arr = &regArray{cells: make(map[rt.ProcID]cell)}
		st.regs[e.Reg] = arr
	}
	if e.Seq > arr.cells[e.Owner].seq {
		arr.cells[e.Owner] = cell{seq: e.Seq, val: e.Val}
		arr.snap, arr.enc = nil, nil // losing merges leave the caches valid
	}
}

// snapshotTail returns the encoded view tail (entry count + entries, in
// owner order — the canonical order both backends' stores use) of one
// register array, rebuilding the caches only when a merge has won since
// they were built. Callers hold s.mu; the returned bytes are immutable by
// convention.
func (s *Server) snapshotTail(election uint64, reg string) []byte {
	st := s.elections[election]
	if st == nil {
		return emptyTail
	}
	arr := st.regs[reg]
	if arr == nil || len(arr.cells) == 0 {
		return emptyTail
	}
	if arr.enc == nil {
		if arr.snap == nil {
			out := make([]rt.Entry, 0, len(arr.cells))
			for owner, c := range arr.cells {
				out = append(out, rt.Entry{Reg: reg, Owner: owner, Seq: c.seq, Val: c.val})
			}
			sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
			arr.snap = out
		}
		enc, err := wire.AppendEntries(nil, reg, arr.snap)
		if err != nil {
			// Values outside the codec's domain cannot be stored here (they
			// arrived through the codec); treat the impossible as an empty
			// view rather than corrupting the stream.
			return emptyTail
		}
		arr.enc = enc
	}
	return arr.enc
}
